// Command ivmablate runs the ablation studies around the paper's
// conclusion: the multitasking option (splitting the triad across both
// CPUs for a uniform access environment), bank-skewing schemes on the
// full machine model, the elementary-kernel stride sweeps, and the
// classical random-access baselines the introduction contrasts with.
//
// Observability: -metrics-out writes the engine studies' counters as
// JSON, -metrics-addr serves them live (Prometheus text at /metrics,
// JSON at /metrics.json, /healthz, expvar, pprof) while the studies
// run, -provenance appends the result-attribution report of the
// engine studies (which theorem, cache orbit or simulation answered
// each placement), and -trace-out exports the sweep workers' timeline
// as a Chrome trace_event file for chrome://tracing or Perfetto.
package main

import (
	"flag"
	"fmt"
	"os"
	"reflect"

	"ivm/internal/machine"
	"ivm/internal/memsys"
	"ivm/internal/obs"
	"ivm/internal/obs/profile"
	"ivm/internal/randaccess"
	"ivm/internal/sweep"
	"ivm/internal/textplot"
	"ivm/internal/xmp"
)

func main() {
	study := flag.String("study", "all", "which study: pairs|triples|sections|section-units|policies|multitask|skew|kernels|random|all")
	n := flag.Int("n", 512, "vector length per stream")
	maxInc := flag.Int("maxinc", 16, "largest increment to sweep")
	workers := flag.Int("workers", 0, "sweep worker goroutines for the engine studies; 0 selects GOMAXPROCS")
	cache := flag.Int("cache", sweep.DefaultCacheSize, "cyclic-state cache entries for the engine studies, shared by pair, triple and section sweeps; negative disables")
	analytic := flag.Bool("analytic", true, "answer theorem-provable pair placements analytically instead of simulating (results are byte-identical either way)")
	kernelName := flag.String("kernel", "packed", "simulator kernel for the engine studies: packed (bit-packed bank-busy) or scalar (the reference oracle)")
	metricsOut := flag.String("metrics-out", "", "write the engine studies' metrics snapshot as JSON")
	metricsAddr := flag.String("metrics-addr", "", "serve live metrics on this address: /metrics Prometheus text, /metrics.json, /healthz, /debug/vars expvar, /debug/pprof")
	provenanceFlag := flag.Bool("provenance", false, "print the engine studies' result-attribution report (per-family path split, theorem hits, orbit sizes)")
	traceOut := flag.String("trace-out", "", "write the engine studies' worker timeline as Chrome trace_event JSON (open in chrome://tracing or Perfetto)")
	prof := profile.AddFlags(flag.CommandLine)
	flag.Parse()

	packed, err := sweep.KernelOption(*kernelName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	stop, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	cfg := machine.DefaultConfig()
	ran := false
	var timeline *sweep.Timeline
	if *traceOut != "" {
		timeline = sweep.NewTimeline(0)
	}
	var prov *sweep.Provenance
	if *provenanceFlag || *metricsOut != "" || *metricsAddr != "" {
		prov = sweep.NewProvenance(0)
	}
	var eng *sweep.Engine
	engine := func() *sweep.Engine {
		if eng == nil {
			eng = sweep.NewEngine(sweep.Options{Workers: *workers, CacheSize: *cache, Timeline: timeline,
				Analytic: analytic, PackedKernel: packed, Provenance: prov})
		}
		return eng
	}
	if *metricsAddr != "" {
		// The engine is created lazily by the first engine study, so the
		// metrics sources resolve it on every poll.
		closer, err := obs.ServeMetrics("ivmablate", *metricsAddr, func() *sweep.Engine { return eng }, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer closer.Close()
	}
	if *study == "pairs" || *study == "all" {
		pairs(engine())
		ran = true
	}
	if *study == "triples" || *study == "all" {
		triplesStudy(engine())
		ran = true
	}
	if *study == "sections" || *study == "all" {
		sectionsStudy(engine())
		ran = true
	}
	if *study == "section-units" || *study == "all" {
		if !sectionUnitsStudy(*workers, *cache) {
			os.Exit(1)
		}
		ran = true
	}
	if *study == "policies" || *study == "all" {
		if !policiesStudy(*workers, *cache) {
			os.Exit(1)
		}
		ran = true
	}
	if *study == "multitask" || *study == "all" {
		multitask(*maxInc, *n, cfg)
		ran = true
	}
	if *study == "skew" || *study == "all" {
		skewStudy(*maxInc, *n, cfg)
		ran = true
	}
	if *study == "kernels" || *study == "all" {
		kernels(*maxInc, *n, cfg)
		ran = true
	}
	if *study == "random" || *study == "all" {
		random()
		ran = true
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown study %q\n", *study)
		os.Exit(1)
	}
	if *provenanceFlag && eng != nil {
		fmt.Println("== result provenance of the engine studies")
		fmt.Print(prov.Snapshot().Table())
		fmt.Println()
	}
	if *metricsOut != "" && eng != nil {
		snap := eng.Snapshot()
		if err := obs.WriteSnapshotFile(*metricsOut, obs.Snapshot{Engine: &snap}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err == nil {
			err = obs.WriteWorkerTrace(f, timeline.Events())
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if d := timeline.Dropped(); d > 0 {
			fmt.Fprintf(os.Stderr, "warning: worker timeline dropped %d events past its capacity\n", d)
		}
	}
	if err := stop(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func pairs(eng *sweep.Engine) {
	fmt.Println("== pair grid on the X-MP memory (m=16, nc=4): cached parallel sweep vs the analysis")
	results := eng.Grid(16, 4)
	fmt.Print(sweep.SummaryTable(sweep.Summarise(16, 4, results)))
	fmt.Print(eng.Metrics().Table())
	fmt.Println()
}

func triplesStudy(eng *sweep.Engine) {
	fmt.Println("== three-stream capacity bounds (m=8, nc=2): all placements vs core.MultiStreamBound")
	results := eng.TripleGrid(8, 2)
	s := sweep.SummariseTripleGrid(8, 2, results)
	fmt.Printf("%d triples over %d placements: bound attained somewhere by %d triples (%d placements), violated by %d\n",
		s.Triples, s.Starts, s.TightSomewhere, s.TightStarts, s.Violations)
	m := eng.Metrics()
	tf := m.Family("triple")
	fmt.Printf("triple cache: %.0f%% hits (%d/%d)\n",
		m.TripleHitRate()*100, tf.Hits, tf.Hits+tf.Misses)
	fmt.Println()
}

func sectionsStudy(eng *sweep.Engine) {
	fmt.Println("== section theorems on the X-MP layout (m=16, s=4, nc=4): cached parallel sweep")
	results := eng.SectionGrid(16, 4, 4)
	bad := 0
	for _, r := range results {
		if !r.Agree {
			bad++
		}
	}
	fmt.Printf("%d pairs, %d disagreements\n", len(results), bad)
	m := eng.Metrics()
	sf := m.Family("section")
	fmt.Printf("section cache: %.0f%% hits (%d/%d)\n",
		m.SectionHitRate()*100, sf.Hits, sf.Hits+sf.Misses)
	fmt.Println()
}

// sectionUnitsStudy is the differential soundness campaign for the
// full-unit-group section canonicalisation: on every section grid from
// EXPERIMENTS.md it runs the cold sequential sweep, the engine under
// the full unit group (the default), and the engine restricted to the
// conservative section-fixing subgroup u ≡ 1 (mod s), and demands all
// three agree result-for-result. It reports both hit rates so the
// cache win of the larger group is visible next to its soundness.
func sectionUnitsStudy(workers, cache int) bool {
	fmt.Println("== section canonicalisation soundness: full unit group vs u ≡ 1 (mod s) subgroup vs cold sweep")
	grids := []struct{ m, s, nc int }{{12, 2, 2}, {12, 3, 3}, {16, 4, 4}, {8, 2, 2}}
	tbl := &textplot.Table{Header: []string{"m", "s", "nc", "pairs", "mismatch", "full hits", "subgroup hits"}}
	ok := true
	for _, g := range grids {
		cold := sweep.SectionGrid(g.m, g.s, g.nc)
		full := sweep.NewEngine(sweep.Options{Workers: workers, CacheSize: cache})
		fullRes := full.SectionGrid(g.m, g.s, g.nc)
		off := false
		sub := sweep.NewEngine(sweep.Options{Workers: workers, CacheSize: cache, SectionFullUnits: &off})
		subRes := sub.SectionGrid(g.m, g.s, g.nc)
		mismatch := 0
		for i := range cold {
			if !reflect.DeepEqual(cold[i], fullRes[i]) || !reflect.DeepEqual(cold[i], subRes[i]) {
				mismatch++
			}
		}
		if mismatch > 0 {
			ok = false
		}
		tbl.Add(g.m, g.s, g.nc, len(cold), mismatch,
			fmt.Sprintf("%.1f%%", full.Metrics().SectionHitRate()*100),
			fmt.Sprintf("%.1f%%", sub.Metrics().SectionHitRate()*100))
	}
	fmt.Print(tbl.String())
	if ok {
		fmt.Println("zero mismatches: the full unit group is sound on every section grid.")
	} else {
		fmt.Println("MISMATCHES FOUND: the full-unit section canonicalisation is unsound here.")
	}
	fmt.Println()
	return ok
}

// policiesStudy is the policy-dimension reproduction and soundness
// campaign. Part A re-derives the paper's Fig. 8a vs 8b and Fig. 9
// story as fixed-placement resolutions: the same two unit-stride
// streams on one CPU of an m=12, s=3, n_c=3 memory lose a third of
// their bandwidth to the fixed-priority section conflict (b_eff = 3/2,
// Fig. 8a), recover the full b_eff = 2 when cyclic priority shares the
// loss (Fig. 8b), and recover it again when the consecutive section
// mapping removes the conflict outright (Fig. 9). Part B is the
// differential campaign over every (priority, mapping) combination:
// the cold sequential sweep, the cached parallel engine, and a warm
// re-run on the same engine must agree result-for-result, with the
// cache hit rate and packed-kernel fallbacks of each combination
// reported next to its mismatch count.
func policiesStudy(workers, cache int) bool {
	fmt.Println("== policy dimensions: Fig. 8a/8b/9 reproduction and the per-policy differential campaign")
	ok := true

	figs := []struct {
		figure   string
		priority memsys.PriorityRule
		mapping  memsys.SectionMapping
		want     string
	}{
		{"8a", memsys.FixedPriority, memsys.CyclicSections, "3/2"},
		{"8b", memsys.CyclicPriority, memsys.CyclicSections, "2"},
		{"9", memsys.FixedPriority, memsys.ConsecutiveSections, "2"},
	}
	feng := sweep.NewEngine(sweep.Options{Workers: workers, CacheSize: cache})
	tblA := &textplot.Table{Header: []string{"figure", "priority", "mapping", "b_eff", "path", "want", "ok"}}
	for _, f := range figs {
		spec := sweep.ConfigSpec{
			M: 12, S: 3, NC: 3,
			Streams: []sweep.Stream{{D: 1, B: 0, CPU: 0}, {D: 1, B: 1, CPU: 0}},
		}.WithPolicy(f.priority, f.mapping)
		res, err := feng.Resolve(spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return false
		}
		good := res.BW.String() == f.want
		if !good {
			ok = false
		}
		tblA.Add(f.figure, f.priority.String(), f.mapping.String(), res.BW.String(), res.Path.String(), f.want, good)
	}
	fmt.Print(tblA.String())
	fmt.Println()

	combos := []struct {
		priority memsys.PriorityRule
		mapping  memsys.SectionMapping
	}{
		{memsys.FixedPriority, memsys.CyclicSections},
		{memsys.CyclicPriority, memsys.CyclicSections},
		{memsys.RoundRobinPerCPU, memsys.CyclicSections},
		{memsys.FixedPriority, memsys.ConsecutiveSections},
		{memsys.CyclicPriority, memsys.ConsecutiveSections},
		{memsys.RoundRobinPerCPU, memsys.ConsecutiveSections},
	}
	tblB := &textplot.Table{Header: []string{"priority", "mapping", "specs", "placements", "mismatch", "hit rate", "packed fallbacks"}}
	for _, c := range combos {
		// Sectionless pair grid only under the cyclic mapping (the
		// consecutive mapping needs sections); the sectioned grid under
		// both mappings.
		var specs []sweep.ConfigSpec
		if c.mapping == memsys.CyclicSections {
			specs = append(specs, sweep.GridSpecs(8, 0, 2)...)
		}
		specs = append(specs, sweep.GridSpecs(12, 3, 3)...)
		for i := range specs {
			specs[i] = specs[i].WithPolicy(c.priority, c.mapping)
		}
		cold := make([]sweep.SpecResult, len(specs))
		for i, sp := range specs {
			cold[i] = sweep.SweepSpec(sp)
		}
		eng := sweep.NewEngine(sweep.Options{Workers: workers, CacheSize: cache})
		engRes := eng.SpecGrid(specs)
		warmRes := eng.SpecGrid(specs)
		mismatch, placements := 0, 0
		for i := range cold {
			placements += cold[i].Starts
			if !reflect.DeepEqual(cold[i], engRes[i]) || !reflect.DeepEqual(cold[i], warmRes[i]) {
				mismatch++
			}
		}
		if mismatch > 0 {
			ok = false
		}
		m := eng.Metrics()
		rate := 0.0
		if lookups := m.CacheHits + m.CacheMisses; lookups > 0 {
			rate = float64(m.CacheHits) / float64(lookups)
		}
		tblB.Add(c.priority.String(), c.mapping.String(), len(specs), placements, mismatch,
			fmt.Sprintf("%.1f%%", rate*100), m.PackedFallbacks)
	}
	fmt.Print(tblB.String())
	if ok {
		fmt.Println("zero mismatches: every (priority, mapping) family is sound cold, cached and warm.")
	} else {
		fmt.Println("MISMATCHES FOUND: a policy family disagrees between the cold, cached and warm paths.")
	}
	fmt.Println()
	return ok
}

func multitask(maxInc, n int, cfg machine.Config) {
	fmt.Printf("== multitasking the triad (conclusion): 2n on one CPU vs n+n on both, n=%d\n", n)
	tbl := &textplot.Table{Header: []string{"INC", "single/clocks", "split/clocks", "speedup"}}
	for _, r := range xmp.MultitaskSweep(maxInc, n, cfg) {
		tbl.Add(r.INC, r.SingleClocks, r.SplitClocks, fmt.Sprintf("%.2f", r.Speedup))
	}
	fmt.Print(tbl.String())
	fmt.Println()
}

func skewStudy(maxInc, n int, cfg machine.Config) {
	fmt.Printf("== linear bank skewing on the full machine (busy environment), n=%d\n", n)
	tbl := &textplot.Table{Header: []string{"INC", "plain/clocks", "skewed/clocks", "ratio"}}
	for inc := 1; inc <= maxInc; inc++ {
		p := xmp.TriadExperiment(inc, n, true, cfg)
		s := xmp.SkewedTriadExperiment(inc, n, xmp.LinearSkewMapper(), cfg)
		tbl.Add(inc, p.Clocks, s.Clocks, fmt.Sprintf("%.2f", float64(s.Clocks)/float64(p.Clocks)))
	}
	fmt.Print(tbl.String())
	fmt.Println("skewing repairs the self-conflicting power-of-two strides and taxes some odd ones.")
	fmt.Println()
}

func kernels(maxInc, n int, cfg machine.Config) {
	fmt.Printf("== elementary kernels over stride (quiet environment), n=%d\n", n)
	tbl := &textplot.Table{Header: []string{"kernel", "INC", "clocks", "bank", "section"}}
	for _, r := range xmp.KernelSweep(maxInc, n, cfg) {
		tbl.Add(r.Kernel, r.INC, r.Clocks, r.Bank, r.Section)
	}
	fmt.Print(tbl.String())
	fmt.Println()
}

func random() {
	fmt.Println("== vector mode vs the classical random-access models (m=16, nc=4, p=4)")
	tbl := &textplot.Table{Header: []string{"distance", "vector b_eff", "random b_eff", "binomial model", "Hellerman m^0.56"}}
	for _, r := range randaccess.CompareStrides(16, 4, 4, []int{1, 2, 3, 4, 8, 16}, 20000) {
		tbl.Add(r.Distance,
			fmt.Sprintf("%.3f", r.Vector),
			fmt.Sprintf("%.3f", r.Random),
			fmt.Sprintf("%.3f", r.Binomial),
			fmt.Sprintf("%.3f", randaccess.Hellerman(16)))
	}
	fmt.Print(tbl.String())
	fmt.Println("random-access theory misses both the conflict-free and the degenerate vector strides.")
}
