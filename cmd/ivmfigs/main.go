// Command ivmfigs regenerates Figures 2-9 of Oed & Lange (1985):
// paper-style bank/clock timelines plus the measured steady-state
// effective bandwidth of each example.
//
// Observability: the shared -cpuprofile/-memprofile/-trace flags
// profile the run, and -metrics-addr serves the shared debug
// endpoints (/metrics Prometheus liveness, /healthz, expvar, pprof)
// while it executes.
package main

import (
	"flag"
	"fmt"
	"os"

	"ivm/internal/figures"
	"ivm/internal/obs"
	"ivm/internal/obs/profile"
	"ivm/internal/trace"
)

func main() {
	fig := flag.String("fig", "", "figure id (2..9, 8a, 8b); empty = all")
	clocks := flag.Int64("clocks", 34, "timeline width in clock periods")
	metricsAddr := flag.String("metrics-addr", "", "serve liveness and debug endpoints on this address: /metrics Prometheus text, /healthz, /debug/vars expvar, /debug/pprof")
	prof := profile.AddFlags(flag.CommandLine)
	flag.Parse()

	stop, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *metricsAddr != "" {
		closer, err := obs.ServeMetrics("ivmfigs", *metricsAddr, nil, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer closer.Close()
	}

	figs := figures.All()
	if *fig != "" {
		f, err := figures.ByID(*fig)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		figs = []figures.Figure{f}
	}
	for _, f := range figs {
		fmt.Printf("Fig. %s — %s\n", f.ID, f.Title)
		fmt.Print(f.Timeline(*clocks))
		bw, cyc, err := f.SteadyBandwidth()
		if err != nil {
			fmt.Fprintf(os.Stderr, "cycle detection failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("steady state: b_eff = %s (cycle length %d, lead %d)", bw, cyc.Length, cyc.Lead)
		if f.WantBandwidth.Num != 0 {
			fmt.Printf("  [paper: %s]", f.WantBandwidth)
		}
		fmt.Printf("\n%s\n\n", f.Outcome)
	}
	fmt.Println(trace.Legend())
	if err := stop(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
