// Command ivmsweep cross-validates the analytic model of Oed & Lange
// (1985) against the cycle-accurate simulator: for every distance pair
// of an (m, n_c) memory system it prints the predicted conflict regime
// and effective bandwidth next to the simulated cyclic-state range over
// all relative starting positions.
package main

import (
	"flag"
	"fmt"

	"ivm/internal/sweep"
)

func main() {
	m := flag.Int("m", 16, "number of banks")
	nc := flag.Int("nc", 4, "bank busy time in clock periods")
	secs := flag.Int("s", 0, "number of sections; nonzero selects the section-theorem sweep (one CPU, Theorems 8/9)")
	triples := flag.Bool("triples", false, "sweep three-stream triples against the capacity bounds instead")
	full := flag.Bool("full", false, "print the full per-pair table (default: summary only)")
	flag.Parse()

	if *triples {
		results := sweep.SweepTriples(*m, *nc)
		sum := sweep.SummariseTriples(results)
		fmt.Printf("m=%d n_c=%d: %d distance triples; capacity bound attained by %d, violated by %d\n",
			*m, *nc, sum.Triples, sum.Tight, sum.Violations)
		return
	}
	if *secs != 0 {
		results := sweep.SectionGrid(*m, *secs, *nc)
		if *full {
			fmt.Print(sweep.SectionTable(results))
			fmt.Println()
		}
		bad := 0
		for _, r := range results {
			if !r.Agree {
				bad++
			}
		}
		fmt.Printf("m=%d s=%d n_c=%d: %d pairs, %d disagreements\n", *m, *secs, *nc, len(results), bad)
		return
	}

	results := sweep.Grid(*m, *nc)
	if *full {
		fmt.Print(sweep.Table(results))
		fmt.Println()
	}
	s := sweep.Summarise(*m, *nc, results)
	fmt.Printf("m=%d n_c=%d: %d stream pairs, each simulated from %d starts\n\n", *m, *nc, s.Pairs, *m)
	fmt.Print(sweep.SummaryTable(s))
	if len(s.Disagree) > 0 {
		fmt.Println("\ndisagreements:")
		fmt.Print(sweep.Table(s.Disagree))
	}
}
