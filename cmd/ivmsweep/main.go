// Command ivmsweep cross-validates the analytic model of Oed & Lange
// (1985) against the cycle-accurate simulator: for every distance pair
// of an (m, n_c) memory system it prints the predicted conflict regime
// and effective bandwidth next to the simulated cyclic-state range over
// all relative starting positions. Sweeps run on the parallel engine
// (worker pool + cyclic-state cache); the sweep tables are
// byte-identical to the sequential path regardless of -workers/-cache.
// (The engine-counter footer is diagnostic: concurrent workers can
// both miss the same cache key, so its counts may vary by a few.)
package main

import (
	"flag"
	"fmt"

	"ivm/internal/sweep"
)

func main() {
	m := flag.Int("m", 16, "number of banks")
	nc := flag.Int("nc", 4, "bank busy time in clock periods")
	secs := flag.Int("s", 0, "number of sections; nonzero selects the section-theorem sweep (one CPU, Theorems 8/9)")
	triples := flag.Bool("triples", false, "sweep three-stream triples against the capacity bounds instead")
	full := flag.Bool("full", false, "print the full per-pair table (default: summary only)")
	workers := flag.Int("workers", 0, "sweep worker goroutines; 0 selects GOMAXPROCS")
	cache := flag.Int("cache", sweep.DefaultCacheSize, "cyclic-state cache entries; negative disables caching")
	showStats := flag.Bool("stats", false, "collect and print per-bank statistics of the simulated states")
	flag.Parse()

	eng := sweep.NewEngine(sweep.Options{Workers: *workers, CacheSize: *cache, CollectStats: *showStats})
	defer func() {
		fmt.Println()
		fmt.Print(eng.Metrics().Table())
		if col := eng.Stats(); col != nil {
			fmt.Println()
			fmt.Print(col.Report())
		}
	}()

	if *triples {
		results := eng.Triples(*m, *nc)
		sum := sweep.SummariseTriples(results)
		fmt.Printf("m=%d n_c=%d: %d distance triples; capacity bound attained by %d, violated by %d\n",
			*m, *nc, sum.Triples, sum.Tight, sum.Violations)
		return
	}
	if *secs != 0 {
		results := eng.SectionGrid(*m, *secs, *nc)
		if *full {
			fmt.Print(sweep.SectionTable(results))
			fmt.Println()
		}
		bad := 0
		for _, r := range results {
			if !r.Agree {
				bad++
			}
		}
		fmt.Printf("m=%d s=%d n_c=%d: %d pairs, %d disagreements\n", *m, *secs, *nc, len(results), bad)
		return
	}

	results := eng.Grid(*m, *nc)
	if *full {
		fmt.Print(sweep.Table(results))
		fmt.Println()
	}
	s := sweep.Summarise(*m, *nc, results)
	fmt.Printf("m=%d n_c=%d: %d stream pairs, each simulated from %d starts\n\n", *m, *nc, s.Pairs, *m)
	fmt.Print(sweep.SummaryTable(s))
	if len(s.Disagree) > 0 {
		fmt.Println("\ndisagreements:")
		fmt.Print(sweep.Table(s.Disagree))
	}
}
