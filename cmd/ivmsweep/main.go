// Command ivmsweep cross-validates the analytic model of Oed & Lange
// (1985) against the cycle-accurate simulator: for every distance pair
// of an (m, n_c) memory system it prints the predicted conflict regime
// and effective bandwidth next to the simulated cyclic-state range over
// all relative starting positions. Sweeps run on the parallel engine
// (worker pool + cyclic-state cache); the sweep tables are
// byte-identical to the sequential path regardless of -workers/-cache.
// (The engine-counter footer is diagnostic: concurrent workers can
// both miss the same cache key, so its counts may vary by a few.)
//
// Observability: -trace-out exports a combined Chrome trace_event
// file for chrome://tracing or Perfetto — the sweep engine's worker
// timeline (work-item slices, cache hit/miss instants, simulation and
// canonicalisation spans) alongside the cycle search of one reference
// pair (-trace-pair); -csv-out writes that pair's window as CSV,
// -strip prints its bank-occupancy strip chart; -metrics-out writes a
// JSON snapshot of the engine counters (cache hit rate, per-worker
// utilisation, the worker timeline when traced, and the provenance
// attribution when recorded) and -metrics-addr serves them live while
// the sweep runs: Prometheus text exposition at /metrics, the JSON
// view at /metrics.json, /healthz, expvar and pprof (-metrics-linger
// keeps the server up after the sweeps so a scraper can read the final
// counters). -provenance appends the result-attribution report — which
// theorem, cache orbit or simulation answered each placement, and
// which orbits a low hit rate hides — and -provenance-csv exports it
// in long form; -progress prints a live status line (items/s, ETA,
// path split) at the given period. -cpuprofile/-memprofile/-trace
// write pprof/runtime profiles of the whole run. -cache-export dir
// appends the run's cached cyclic states to a persistent cache store
// (internal/cachestore) that ivmserved -cache-dir warm-starts from;
// see docs/SERVING.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"ivm/internal/cachestore"
	"ivm/internal/memsys"
	"ivm/internal/obs"
	"ivm/internal/obs/profile"
	"ivm/internal/sweep"
)

func main() {
	m := flag.Int("m", 16, "number of banks")
	nc := flag.Int("nc", 4, "bank busy time in clock periods")
	secs := flag.Int("s", 0, "number of sections; nonzero selects the section-theorem sweep (one CPU, Theorems 8/9)")
	triples := flag.Bool("triples", false, "sweep three-stream triples (all relative placements) against the capacity bounds instead")
	census := flag.Bool("triple-census", false, "with -triples: only the fixed placement (0,1,2) per triple, the cheap regime scan")
	streams := flag.Int("streams", 0, "sweep N concurrent streams (one per CPU, all relative placements) against the capacity bounds; 0 selects the pair sweep")
	fullUnits := flag.Bool("section-full-units", true, "canonicalise section sweeps under the full unit group (validated by ivmablate -study section-units); false restricts to u ≡ 1 (mod s)")
	full := flag.Bool("full", false, "print the full per-pair table (default: summary only)")
	workers := flag.Int("workers", 0, "sweep worker goroutines; 0 selects GOMAXPROCS")
	cache := flag.Int("cache", sweep.DefaultCacheSize, "cyclic-state cache entries, shared by pair, triple and section sweeps; negative disables caching")
	analytic := flag.Bool("analytic", true, "answer theorem-provable pair placements analytically instead of simulating (results are byte-identical either way)")
	priorityName := flag.String("priority", "fixed", "arbitration priority rule: fixed, cyclic or rr-cpu; non-default rules run the pair/section families through the generic spec grid")
	mappingName := flag.String("mapping", "cyclic", "bank-to-section mapping: cyclic or consecutive (consecutive requires -s)")
	strict := flag.Bool("strict", false, "treat flag-combination warnings as errors")
	kernelName := flag.String("kernel", "packed", "simulator kernel: packed (bit-packed bank-busy) or scalar (the reference oracle)")
	showStats := flag.Bool("stats", false, "collect and print per-bank statistics of the simulated states")
	traceOut := flag.String("trace-out", "", "write a Chrome trace_event JSON of the sweep worker timeline plus the traced pair's cycle search (open in chrome://tracing or Perfetto)")
	csvOut := flag.String("csv-out", "", "write the traced pair's event timeline as CSV")
	tracePair := flag.String("trace-pair", "1:2:0", "pair to trace as d1:d2[:b2]")
	strip := flag.Bool("strip", false, "print the traced pair's bank-occupancy strip chart")
	metricsOut := flag.String("metrics-out", "", "write a JSON metrics snapshot (engine counters, per-worker utilisation, stats, trace totals, provenance)")
	metricsAddr := flag.String("metrics-addr", "", "serve live metrics on this address: /metrics Prometheus text, /metrics.json, /healthz, /debug/vars expvar, /debug/pprof")
	metricsLinger := flag.Duration("metrics-linger", 0, "keep the -metrics-addr server up this long after the sweeps finish (lets a scraper read the final counters)")
	provenanceFlag := flag.Bool("provenance", false, "print the result-attribution report: per-family path split, per-theorem analytic hits, orbit sizes and the top unexplained orbits")
	provenanceCSV := flag.String("provenance-csv", "", "write the result-attribution report as long-form CSV")
	progressEvery := flag.Duration("progress", 0, "print a live progress line (items/s, ETA, path split) to stderr at this period; 0 disables")
	latencyFlag := flag.Bool("latency", false, "record a per-work-item latency histogram and print p50/p95/p99 (also in -metrics-out and -metrics-addr)")
	cacheExport := flag.String("cache-export", "", "after the sweeps, export the cyclic-state cache to the persistent store in this directory (warm-start set for ivmserved -cache-dir)")
	prof := profile.AddFlags(flag.CommandLine)
	flag.Parse()

	priority, err := memsys.ParsePriority(*priorityName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		flag.Usage()
		os.Exit(2)
	}
	mapping, err := memsys.ParseMapping(*mappingName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		flag.Usage()
		os.Exit(2)
	}
	warning, err := validateSweepFlags(sweepFlags{
		streams: *streams, secs: *secs, triples: *triples, census: *census,
		priority: priority, mapping: mapping, analytic: *analytic, strict: *strict,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		flag.Usage()
		os.Exit(2)
	}
	if warning != "" {
		fmt.Fprintln(os.Stderr, "warning: "+warning)
	}

	packed, err := sweep.KernelOption(*kernelName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		flag.Usage()
		os.Exit(2)
	}

	stop, err := prof.Start()
	if err != nil {
		fail("%v", err)
	}

	var timeline *sweep.Timeline
	if *traceOut != "" {
		timeline = sweep.NewTimeline(0)
	}
	// Attach the provenance recorder whenever anything will read it:
	// the attribution report, its CSV export, the JSON snapshot, or the
	// live Prometheus endpoint. Detached it would cost nothing, but
	// would also explain nothing.
	var prov *sweep.Provenance
	if *provenanceFlag || *provenanceCSV != "" || *metricsOut != "" || *metricsAddr != "" {
		prov = sweep.NewProvenance(0)
	}
	var prog *obs.Progress
	if *progressEvery > 0 || *metricsAddr != "" {
		prog = obs.NewProgress(prov)
	}
	var itemLatency *obs.LatencyHist
	if *latencyFlag {
		itemLatency = obs.NewLatencyHist()
	}
	eng := sweep.NewEngine(sweep.Options{
		Workers: *workers, CacheSize: *cache, CollectStats: *showStats,
		SectionFullUnits: fullUnits, Timeline: timeline,
		Analytic: analytic, PackedKernel: packed,
		Provenance: prov, Progress: progressSink(prog),
		ItemLatency: latencySink(itemLatency),
	})
	if *metricsAddr != "" {
		closer, err := obs.ServeMetrics("ivmsweep", *metricsAddr, func() *sweep.Engine { return eng }, prog, itemLatency)
		if err != nil {
			fail("%v", err)
		}
		defer closer.Close()
	}
	if *progressEvery > 0 {
		stopProgress := prog.Start(os.Stderr, *progressEvery)
		defer stopProgress()
	}

	runSweeps(eng, *m, *nc, *secs, *streams, *triples, *census, *full, priority, mapping)

	if *cacheExport != "" {
		if err := exportCache(eng, *cacheExport); err != nil {
			fail("%v", err)
		}
	}

	fmt.Println()
	fmt.Print(eng.Metrics().Table())
	if itemLatency != nil {
		fmt.Printf("\nwork-item latency: %s\n", itemLatency.Snapshot().Summary())
	}
	if *provenanceFlag {
		fmt.Println()
		fmt.Print(prov.Snapshot().Table())
	}
	if *provenanceCSV != "" {
		if err := writeFile(*provenanceCSV, func(w *os.File) error {
			return prov.Snapshot().WriteCSV(w)
		}); err != nil {
			fail("%v", err)
		}
	}
	col := eng.Stats()
	if col != nil {
		fmt.Println()
		fmt.Print(col.Report())
	}

	var traceStats *obs.TraceStats
	if *traceOut != "" || *csvOut != "" || *strip {
		tr, err := traceOnePair(*m, *nc, *tracePair)
		if err != nil {
			fail("%v", err)
		}
		events := tr.Events()
		if *traceOut != "" {
			if err := writeFile(*traceOut, func(w *os.File) error {
				return obs.WriteCombinedChromeTrace(w, events, *m, *nc, timeline.Events())
			}); err != nil {
				fail("%v", err)
			}
			if d := timeline.Dropped(); d > 0 {
				fmt.Fprintf(os.Stderr, "warning: worker timeline dropped %d events past its capacity\n", d)
			}
		}
		if *csvOut != "" {
			if err := writeFile(*csvOut, func(w *os.File) error {
				return obs.WriteCSV(w, events)
			}); err != nil {
				fail("%v", err)
			}
		}
		if d := tr.Stats().Dropped; d > 0 {
			fmt.Fprintf(os.Stderr,
				"warning: trace ring wrapped, the exported window lost the oldest %d events\n", d)
		}
		if *strip {
			fmt.Println()
			fmt.Print(obs.StripChart(events, *m, *nc))
		}
		s := tr.Stats()
		traceStats = &s
	}

	if *metricsOut != "" {
		snap := obs.Snapshot{Trace: traceStats}
		es := eng.Snapshot()
		snap.Engine = &es
		if col != nil {
			cs := col.Snapshot()
			snap.Stats = &cs
		}
		if itemLatency != nil {
			ls := itemLatency.Snapshot()
			snap.ItemLatency = &ls
		}
		if err := obs.WriteSnapshotFile(*metricsOut, snap); err != nil {
			fail("%v", err)
		}
	}
	if *metricsAddr != "" && *metricsLinger > 0 {
		fmt.Fprintf(os.Stderr, "metrics server lingering for %s\n", *metricsLinger)
		time.Sleep(*metricsLinger)
	}
	if err := stop(); err != nil {
		fail("%v", err)
	}
}

// exportCache appends the engine's cached cyclic states to the
// persistent store at dir (deduplicated against what the store already
// holds), so a later ivmserved -cache-dir run starts warm. Analytic
// answers never enter the cache, so the export holds exactly the
// simulated orbits — complete for serving, which gates the same
// placements analytically.
func exportCache(eng *sweep.Engine, dir string) error {
	store, err := cachestore.Open(dir)
	if err != nil {
		return err
	}
	records := eng.CacheRecords()
	before := store.Len()
	for _, rec := range records {
		store.Put(rec)
	}
	added := store.Len() - before
	if err := store.Close(); err != nil {
		return fmt.Errorf("cache export: %v", err)
	}
	fmt.Fprintf(os.Stderr, "exported %d cached states to %s (%d new)\n",
		len(records), store.Path(), added)
	return nil
}

// progressSink adapts a possibly-nil tracker to the engine's sink
// interface without boxing a typed nil into a non-nil interface.
func progressSink(p *obs.Progress) sweep.ProgressSink {
	if p == nil {
		return nil
	}
	return p
}

// latencySink adapts a possibly-nil histogram to the engine's sink
// interface without boxing a typed nil into a non-nil interface.
func latencySink(h *obs.LatencyHist) sweep.LatencySink {
	if h == nil {
		return nil
	}
	return h
}

// sweepFlags collects the mutually exclusive sweep-family selectors
// and the policy dimensions for validation before any work starts.
type sweepFlags struct {
	streams  int
	secs     int
	triples  bool
	census   bool
	priority memsys.PriorityRule
	mapping  memsys.SectionMapping
	analytic bool
	strict   bool
}

// defaultPolicy reports whether the flags select the historical
// fixed-priority, cyclic-mapping sweep.
func (f sweepFlags) defaultPolicy() bool {
	return f.priority == memsys.FixedPriority && f.mapping == memsys.CyclicSections
}

// validateSweepFlags rejects conflicting flag combinations with a
// usage error instead of silently ignoring one of the flags. A
// combination that is legal but surprising — the analytic gate under a
// priority rule its theorems do not cover — comes back as a warning,
// promoted to an error under -strict.
func validateSweepFlags(f sweepFlags) (warning string, err error) {
	if f.streams < 0 || f.streams == 1 {
		return "", fmt.Errorf("-streams wants 0 (pair sweep) or at least 2 streams, got %d", f.streams)
	}
	if f.census && !f.triples {
		return "", fmt.Errorf("-triple-census only applies together with -triples")
	}
	if f.triples && f.secs != 0 {
		return "", fmt.Errorf("-triples sweeps are sectionless; -s selects the section-theorem pair sweep: pick one")
	}
	if f.streams >= 2 && f.triples {
		return "", fmt.Errorf("-streams and -triples select different sweeps: pick one")
	}
	if f.streams >= 2 && f.secs != 0 {
		return "", fmt.Errorf("the -streams grid is sectionless; -s selects the section-theorem pair sweep: pick one")
	}
	if f.mapping == memsys.ConsecutiveSections && f.secs == 0 {
		return "", fmt.Errorf("-mapping consecutive partitions banks into sections; it needs -s")
	}
	if !f.defaultPolicy() && (f.triples || f.streams >= 2) {
		return "", fmt.Errorf("-priority/-mapping sweeps cover the pair and section families; drop -triples/-streams")
	}
	if f.analytic && f.priority != memsys.FixedPriority {
		msg := fmt.Sprintf("analytic gate does not cover %s priority, ignoring -analytic", f.priority)
		if f.strict {
			return "", fmt.Errorf("%s: rerun with -analytic=false (strict)", msg)
		}
		return msg, nil
	}
	return "", nil
}

func runSweeps(eng *sweep.Engine, m, nc, secs, streams int, triples, census, full bool, priority memsys.PriorityRule, mapping memsys.SectionMapping) {
	if priority != memsys.FixedPriority || mapping != memsys.CyclicSections {
		specs := sweep.GridSpecs(m, secs, nc)
		for i := range specs {
			specs[i] = specs[i].WithPolicy(priority, mapping)
		}
		results := eng.SpecGrid(specs)
		if full {
			fmt.Print(sweep.SpecTable(results))
			fmt.Println()
		}
		sum := sweep.SummariseSpecGrid(results)
		fmt.Printf("m=%d s=%d n_c=%d priority=%s mapping=%s: %d distance pairs over %d placements; bound attained somewhere by %d pairs (%d placements), violated by %d\n",
			m, secs, nc, priority, mapping, sum.Triples, sum.Starts, sum.TightSomewhere, sum.TightStarts, sum.Violations)
		return
	}
	if streams >= 2 {
		results := eng.NStreamGrid(m, nc, streams)
		if full {
			fmt.Print(sweep.SpecTable(results))
			fmt.Println()
		}
		sum := sweep.SummariseSpecGrid(results)
		fmt.Printf("m=%d n_c=%d p=%d: %d distance tuples over %d placements; bound attained somewhere by %d tuples (%d placements), violated by %d\n",
			m, nc, streams, sum.Triples, sum.Starts, sum.TightSomewhere, sum.TightStarts, sum.Violations)
		return
	}
	if triples {
		if census {
			results := eng.Triples(m, nc)
			sum := sweep.SummariseTriples(results)
			fmt.Printf("m=%d n_c=%d: %d distance triples at placement (0,1,2); capacity bound attained by %d, violated by %d\n",
				m, nc, sum.Triples, sum.Tight, sum.Violations)
			return
		}
		results := eng.TripleGrid(m, nc)
		if full {
			fmt.Print(sweep.TripleGridTable(results))
			fmt.Println()
		}
		sum := sweep.SummariseTripleGrid(m, nc, results)
		fmt.Printf("m=%d n_c=%d: %d distance triples over %d placements; bound attained somewhere by %d triples (%d placements), violated by %d\n",
			m, nc, sum.Triples, sum.Starts, sum.TightSomewhere, sum.TightStarts, sum.Violations)
		return
	}
	if secs != 0 {
		results := eng.SectionGrid(m, secs, nc)
		if full {
			fmt.Print(sweep.SectionTable(results))
			fmt.Println()
		}
		bad := 0
		for _, r := range results {
			if !r.Agree {
				bad++
			}
		}
		fmt.Printf("m=%d s=%d n_c=%d: %d pairs, %d disagreements\n", m, secs, nc, len(results), bad)
		return
	}

	results := eng.Grid(m, nc)
	if full {
		fmt.Print(sweep.Table(results))
		fmt.Println()
	}
	s := sweep.Summarise(m, nc, results)
	fmt.Printf("m=%d n_c=%d: %d stream pairs, each simulated from %d starts\n\n", m, nc, s.Pairs, m)
	fmt.Print(sweep.SummaryTable(s))
	if len(s.Disagree) > 0 {
		fmt.Println("\ndisagreements:")
		fmt.Print(sweep.Table(s.Disagree))
	}
}

// traceOnePair re-simulates one pair's steady-state search with a
// tracer attached, so the exported trace shows the transient before
// the streams synchronise into their cyclic state.
func traceOnePair(m, nc int, spec string) (*obs.Tracer, error) {
	d1, d2, b2, err := parsePairSpec(spec)
	if err != nil {
		return nil, err
	}
	sys := memsys.New(memsys.Config{Banks: m, BankBusy: nc, CPUs: 2})
	tr := obs.Attach(sys, obs.TracerOptions{})
	sys.AddPort(0, "1", memsys.NewInfiniteStrided(0, int64(d1)))
	sys.AddPort(1, "2", memsys.NewInfiniteStrided(int64(b2), int64(d2)))
	cyc, err := sys.FindCycle(1 << 22)
	if err != nil {
		return nil, fmt.Errorf("trace pair %s: %w", spec, err)
	}
	fmt.Printf("\ntraced pair %d(+)%d from b2=%d: b_eff=%s (lead %d, cycle %d)\n",
		d1, d2, b2, cyc.EffectiveBandwidth(), cyc.Lead, cyc.Length)
	return tr, nil
}

func parsePairSpec(spec string) (d1, d2, b2 int, err error) {
	fields := strings.Split(spec, ":")
	if len(fields) < 2 || len(fields) > 3 {
		return 0, 0, 0, fmt.Errorf("trace pair: want d1:d2[:b2], got %q", spec)
	}
	vals := make([]int, len(fields))
	for i, f := range fields {
		if vals[i], err = strconv.Atoi(strings.TrimSpace(f)); err != nil {
			return 0, 0, 0, fmt.Errorf("trace pair %q: %v", spec, err)
		}
	}
	d1, d2 = vals[0], vals[1]
	if len(vals) == 3 {
		b2 = vals[2]
	}
	return d1, d2, b2, nil
}

func writeFile(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
