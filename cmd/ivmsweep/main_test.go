package main

import (
	"strings"
	"testing"
)

func TestValidateSweepFlags(t *testing.T) {
	good := []sweepFlags{
		{},              // default pair sweep
		{secs: 4},       // section sweep
		{triples: true}, // triple grid
		{triples: true, census: true},
		{streams: 2},
		{streams: 4},
	}
	for _, f := range good {
		if err := validateSweepFlags(f); err != nil {
			t.Errorf("%+v rejected: %v", f, err)
		}
	}
	bad := []struct {
		f    sweepFlags
		want string
	}{
		{sweepFlags{streams: 1}, "-streams"},
		{sweepFlags{streams: -3}, "-streams"},
		{sweepFlags{census: true}, "-triple-census"},
		{sweepFlags{triples: true, secs: 4}, "pick one"},
		{sweepFlags{streams: 3, triples: true}, "pick one"},
		{sweepFlags{streams: 3, secs: 4}, "pick one"},
	}
	for _, c := range bad {
		err := validateSweepFlags(c.f)
		if err == nil {
			t.Errorf("%+v accepted", c.f)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%+v: error %q does not mention %q", c.f, err, c.want)
		}
	}
}

func TestParsePairSpec(t *testing.T) {
	d1, d2, b2, err := parsePairSpec("1:2:3")
	if err != nil || d1 != 1 || d2 != 2 || b2 != 3 {
		t.Fatalf("parsePairSpec(1:2:3) = %d,%d,%d,%v", d1, d2, b2, err)
	}
	if _, _, _, err := parsePairSpec("1"); err == nil {
		t.Fatal("single field accepted")
	}
	if _, _, _, err := parsePairSpec("1:x"); err == nil {
		t.Fatal("non-numeric field accepted")
	}
}
