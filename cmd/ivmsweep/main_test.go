package main

import (
	"strings"
	"testing"

	"ivm/internal/memsys"
)

func TestValidateSweepFlags(t *testing.T) {
	good := []sweepFlags{
		{},              // default pair sweep
		{secs: 4},       // section sweep
		{triples: true}, // triple grid
		{triples: true, census: true},
		{streams: 2},
		{streams: 4},
		{priority: memsys.CyclicPriority},
		{priority: memsys.RoundRobinPerCPU, secs: 4},
		{secs: 4, mapping: memsys.ConsecutiveSections},
		{secs: 4, mapping: memsys.ConsecutiveSections, priority: memsys.CyclicPriority},
	}
	for _, f := range good {
		if w, err := validateSweepFlags(f); err != nil || w != "" {
			t.Errorf("%+v rejected: warning %q err %v", f, w, err)
		}
	}
	bad := []struct {
		f    sweepFlags
		want string
	}{
		{sweepFlags{streams: 1}, "-streams"},
		{sweepFlags{streams: -3}, "-streams"},
		{sweepFlags{census: true}, "-triple-census"},
		{sweepFlags{triples: true, secs: 4}, "pick one"},
		{sweepFlags{streams: 3, triples: true}, "pick one"},
		{sweepFlags{streams: 3, secs: 4}, "pick one"},
		{sweepFlags{mapping: memsys.ConsecutiveSections}, "-s"},
		{sweepFlags{priority: memsys.CyclicPriority, triples: true}, "pair and section families"},
		{sweepFlags{priority: memsys.RoundRobinPerCPU, streams: 3}, "pair and section families"},
		{sweepFlags{priority: memsys.CyclicPriority, analytic: true, strict: true}, "analytic gate"},
	}
	for _, c := range bad {
		_, err := validateSweepFlags(c.f)
		if err == nil {
			t.Errorf("%+v accepted", c.f)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%+v: error %q does not mention %q", c.f, err, c.want)
		}
	}
}

// TestValidateSweepFlagsAnalyticWarning pins the satellite behaviour:
// -analytic with a non-fixed priority warns (the gate declines anyway)
// and only -strict promotes the warning to an error.
func TestValidateSweepFlagsAnalyticWarning(t *testing.T) {
	for _, prio := range []memsys.PriorityRule{memsys.CyclicPriority, memsys.RoundRobinPerCPU} {
		w, err := validateSweepFlags(sweepFlags{priority: prio, analytic: true})
		if err != nil {
			t.Fatalf("priority %v: unexpected error %v", prio, err)
		}
		if !strings.Contains(w, "analytic gate does not cover") || !strings.Contains(w, prio.String()) {
			t.Fatalf("priority %v: warning %q", prio, w)
		}
	}
	if w, err := validateSweepFlags(sweepFlags{priority: memsys.FixedPriority, analytic: true}); err != nil || w != "" {
		t.Fatalf("fixed priority warned: %q, %v", w, err)
	}
}

func TestParsePairSpec(t *testing.T) {
	d1, d2, b2, err := parsePairSpec("1:2:3")
	if err != nil || d1 != 1 || d2 != 2 || b2 != 3 {
		t.Fatalf("parsePairSpec(1:2:3) = %d,%d,%d,%v", d1, d2, b2, err)
	}
	if _, _, _, err := parsePairSpec("1"); err == nil {
		t.Fatal("single field accepted")
	}
	if _, _, _, err := parsePairSpec("1:x"); err == nil {
		t.Fatal("non-numeric field accepted")
	}
}
