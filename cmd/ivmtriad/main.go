// Command ivmtriad reproduces the Fig. 10 experiment of Oed & Lange
// (1985): execution times and conflict counts of the Fortran triad
// A(I) = B(I) + C(I)*D(I) on a simulated 2-CPU, 16-bank Cray X-MP for
// INC = 1..16, with the other CPU saturating memory at distance 1.
//
// -bounds appends an idealised three-stream capacity study per
// increment: the triad's three operand streams as equal-stride
// infinite streams on a 16-bank n_c = 4 memory, swept over all
// relative placements against core.MultiStreamBound on the cached
// sweep engine (-workers/-cache).
//
// Observability: the shared -cpuprofile/-memprofile/-trace flags
// profile the run, and -metrics-addr serves the live endpoints
// (Prometheus text at /metrics — including the -bounds engine's
// counters — /metrics.json, /healthz, expvar, pprof) while it runs.
package main

import (
	"flag"
	"fmt"
	"os"

	"ivm/internal/explain"
	"ivm/internal/machine"
	"ivm/internal/obs"
	"ivm/internal/obs/profile"
	"ivm/internal/sweep"
	"ivm/internal/xmp"
)

func main() {
	n := flag.Int("n", 1024, "vector length per stream")
	maxInc := flag.Int("maxinc", 16, "largest increment to sweep")
	quiet := flag.Bool("quiet", false, "shut the other CPU off (Fig. 10b)")
	explainFlag := flag.Bool("explain", false, "append the analytic pairwise verdict per increment (Section IV reasoning)")
	bounds := flag.Bool("bounds", false, "append the idealised three-stream capacity-bound sweep per increment (all placements, cached engine)")
	workers := flag.Int("workers", 0, "sweep worker goroutines for -bounds; 0 selects GOMAXPROCS")
	cache := flag.Int("cache", sweep.DefaultCacheSize, "cyclic-state cache entries for -bounds, shared by pair, triple and section sweeps; negative disables caching")
	analytic := flag.Bool("analytic", true, "answer theorem-provable pair placements analytically instead of simulating (results are byte-identical either way)")
	kernelName := flag.String("kernel", "packed", "simulator kernel for -bounds: packed (bit-packed bank-busy) or scalar (the reference oracle)")
	metricsAddr := flag.String("metrics-addr", "", "serve live metrics on this address: /metrics Prometheus text, /metrics.json, /healthz, /debug/vars expvar, /debug/pprof")
	prof := profile.AddFlags(flag.CommandLine)
	flag.Parse()

	packed, err := sweep.KernelOption(*kernelName)
	if err != nil {
		fmt.Println(err)
		flag.Usage()
		return
	}

	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// The engine exists only when -bounds runs; the metrics sources
	// resolve it lazily on every poll.
	var eng *sweep.Engine
	if *metricsAddr != "" {
		closer, err := obs.ServeMetrics("ivmtriad", *metricsAddr, func() *sweep.Engine { return eng }, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer closer.Close()
	}

	cfg := machine.DefaultConfig()
	mode := "other CPU saturating at d=1 (Fig. 10a/c/d/e)"
	if *quiet {
		mode = "other CPU off (Fig. 10b)"
	}
	fmt.Printf("Triad A(I)=B(I)+C(I)*D(I), n=%d, %s\n", *n, mode)
	fmt.Printf("%-4s %10s %10s %8s %8s %8s\n", "INC", "clocks", "time/us", "bank", "section", "simult")
	for _, r := range xmp.TriadSweep(*maxInc, *n, !*quiet, cfg) {
		fmt.Printf("%-4d %10d %10.1f %8d %8d %8d", r.INC, r.Clocks, r.Micros, r.Bank, r.Section, r.Simultaneous)
		if *explainFlag && !*quiet {
			v := explain.TriadReport(r.INC).Verdicts[0]
			fmt.Printf("   %d(+)%d %s", v.Canonical[0], v.Canonical[1], v.Analysis.Regime)
			if v.HasRole {
				if v.WorkWins {
					fmt.Printf(" (triad wins)")
				} else {
					fmt.Printf(" (triad delayed)")
				}
			}
		}
		fmt.Println()
	}

	if *bounds {
		eng = sweep.NewEngine(sweep.Options{Workers: *workers, CacheSize: *cache,
			Analytic: analytic, PackedKernel: packed})
		fmt.Printf("\nIdealised triad streams (INC,INC,INC) on m=16 n_c=4, all relative placements:\n")
		fmt.Printf("%-4s %12s %12s %12s %12s %10s\n", "INC", "bound min", "bound max", "sim min", "sim max", "tight")
		for inc := 1; inc <= *maxInc; inc++ {
			r := eng.SweepTriple(16, 4, [3]int{inc, inc, inc})
			fmt.Printf("%-4d %12s %12s %12s %12s %6d/%d\n",
				inc, r.BoundMin, r.BoundMax, r.SimMin, r.SimMax, r.TightStarts, r.Starts)
		}
		m := eng.Metrics()
		tf := m.Family("triple")
		fmt.Printf("engine: %d placements, %.0f%% cache hits\n",
			tf.Hits+tf.Misses, m.TripleHitRate()*100)
	}

	if err := stopProf(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
