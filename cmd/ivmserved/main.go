// Command ivmserved is the long-running bandwidth service: it answers
// "what is the effective bandwidth of this configuration" over
// HTTP/JSON through the same sweep engine as ivmsweep, so served
// results are byte-identical to the sweep tables. Endpoints
// (docs/SERVING.md is the full reference):
//
//	POST /v1/bandwidth   one fixed-placement spec -> b_eff + provenance
//	POST /v1/batch       many specs amortised over the worker pool
//	GET  /v1/sweep?...   a stride pair's start sweep, streamed NDJSON
//	GET  /healthz        liveness + persistent-store integrity
//	GET  /metrics        Prometheus exposition: ivmserved_* request,
//	                     latency and hit-path counters (including the
//	                     ivmserved_request_duration_seconds histogram)
//	                     beside the engine's ivm_sweep_* metrics
//	GET  /statusz        human-readable state: traffic, latency
//	                     quantiles, hit rates, recent slow requests
//	GET  /debug/requests.trace  recent requests as a Chrome trace
//
// Every request is traced: an incoming X-Request-ID is honored
// (minted when absent) and echoed on the response, and the request's
// phase spans (decode, gate, canonicalise, cache-probe, simulate,
// encode) are recorded into the trace export. With -access-log each
// request also writes one JSON line (id, endpoint, status, answer
// path, theorem, latency); requests over -slow-ms are logged at WARN
// with their span breakdown and surface on /statusz.
//
// With -cache-dir the canonical-key cache persists across restarts:
// records load on start (warm start — previously simulated orbits
// answer with path=cache immediately), new simulations append to the
// store's checksummed log, and -sync bounds how much a crash can
// lose. A corrupt or truncated log tail is skipped with a logged
// count, never a crash. Warm-start sets can also be produced offline
// with ivmsweep -cache-export.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ivm/internal/cachestore"
	"ivm/internal/serve"
	"ivm/internal/sweep"
)

func main() {
	addr := flag.String("addr", "localhost:8080", "listen address (host:port; :0 picks an ephemeral port)")
	cacheDir := flag.String("cache-dir", "", "persistent cache store directory: load on start, append new simulations, survive restarts")
	cacheSize := flag.Int("cache", 0, "in-RAM cyclic-state cache entries; 0 sizes automatically (at least the default, grown to hold the store)")
	workers := flag.Int("workers", 0, "resolver worker goroutines; 0 selects GOMAXPROCS")
	syncEvery := flag.Duration("sync", 5*time.Second, "fsync interval for the persistent store's log")
	analytic := flag.Bool("analytic", true, "answer theorem-provable pair placements analytically instead of simulating (results are byte-identical either way)")
	kernelName := flag.String("kernel", "packed", "simulator kernel: packed (bit-packed bank-busy) or scalar (the reference oracle)")
	accessLog := flag.String("access-log", "", "write a JSON access log (one line per request) to this file; \"-\" for stderr")
	slowMS := flag.Int("slow-ms", 0, "log requests slower than this many milliseconds at WARN with their span breakdown and keep them on /statusz; 0 disables")
	flag.Parse()

	packed, err := sweep.KernelOption(*kernelName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		flag.Usage()
		os.Exit(2)
	}

	opt := serve.Options{
		Workers:   *workers,
		CacheSize: *cacheSize,
		Analytic:  analytic, PackedKernel: packed,
		SlowThreshold: time.Duration(*slowMS) * time.Millisecond,
	}
	if *accessLog != "" {
		logW := os.Stderr
		if *accessLog != "-" {
			f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				fail("ivmserved: access log: %v", err)
			}
			defer f.Close()
			logW = f
		}
		opt.AccessLog = slog.New(slog.NewJSONHandler(logW, nil))
	}
	var store *cachestore.Store
	if *cacheDir != "" {
		store, err = cachestore.Open(*cacheDir)
		if err != nil {
			fail("%v", err)
		}
		defer store.Close()
		if skipped, bytes := store.Skipped(); skipped > 0 {
			fmt.Fprintf(os.Stderr, "ivmserved: %s: skipped %d corrupt tail record(s), %d byte(s) truncated\n",
				store.Path(), skipped, bytes)
		}
		fmt.Fprintf(os.Stderr, "ivmserved: loaded %d cached state(s) from %s\n",
			len(store.Records()), store.Path())
		if *syncEvery > 0 {
			store.AutoSync(*syncEvery)
		}
		opt.Store = store
	}

	srv, err := serve.New(opt)
	if err != nil {
		fail("%v", err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail("ivmserved: %v", err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "ivmserved listening on http://%s\n", ln.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "ivmserved: %v: shutting down\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			hs.Close() //nolint:errcheck // already failing
		}
	case err := <-done:
		if err != nil && err != http.ErrServerClosed {
			fail("ivmserved: %v", err)
		}
	}
	if store != nil {
		if err := store.Sync(); err != nil {
			fail("ivmserved: store sync: %v", err)
		}
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
