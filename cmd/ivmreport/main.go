// Command ivmreport regenerates the complete reproduction record in
// one run: Figures 2–9 steady states against the paper's values, the
// full-grid analytic-vs-simulation agreement, the Fig. 10 triad series
// with the per-increment analytic verdict, and the ablation summaries.
// Its output is the machine-generated counterpart of EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"

	"ivm/internal/report"
)

func main() {
	fast := flag.Bool("fast", false, "shrink the expensive sweeps")
	flag.Parse()

	opts := report.Defaults()
	if *fast {
		opts = report.Fast()
	}
	if err := report.Write(os.Stdout, opts); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
