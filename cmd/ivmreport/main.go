// Command ivmreport regenerates the complete reproduction record in
// one run: Figures 2–9 steady states against the paper's values, the
// full-grid analytic-vs-simulation agreement, the Fig. 10 triad series
// with the per-increment analytic verdict, and the ablation summaries.
// Its output is the machine-generated counterpart of EXPERIMENTS.md.
//
// The grid sweeps run on the parallel sweep engine (-workers/-cache);
// the report is byte-identical to the sequential path apart from the
// appended engine-counter and result-provenance sections (the latter
// attributes every grid placement to the theorem, cache orbit or
// simulation that answered it; -provenance=false drops it).
// -metrics-out captures the engine snapshot (cache hit rate,
// per-worker utilisation, provenance) as JSON, -metrics-addr serves it
// live (Prometheus text at /metrics, JSON at /metrics.json, /healthz,
// expvar, pprof) while the report generates, and the shared
// -cpuprofile/-memprofile/-trace flags profile the run.
package main

import (
	"flag"
	"fmt"
	"os"

	"ivm/internal/obs"
	"ivm/internal/obs/profile"
	"ivm/internal/report"
	"ivm/internal/sweep"
)

func main() {
	fast := flag.Bool("fast", false, "shrink the expensive sweeps")
	workers := flag.Int("workers", 0, "sweep worker goroutines; 0 selects GOMAXPROCS")
	cache := flag.Int("cache", sweep.DefaultCacheSize, "cyclic-state cache entries, shared by pair, triple and section sweeps; negative disables caching")
	analytic := flag.Bool("analytic", true, "answer theorem-provable pair placements analytically instead of simulating (results are byte-identical either way)")
	kernelName := flag.String("kernel", "packed", "simulator kernel: packed (bit-packed bank-busy) or scalar (the reference oracle)")
	metricsOut := flag.String("metrics-out", "", "write the engine metrics snapshot as JSON to this file")
	metricsAddr := flag.String("metrics-addr", "", "serve live metrics on this address: /metrics Prometheus text, /metrics.json, /healthz, /debug/vars expvar, /debug/pprof")
	provenanceFlag := flag.Bool("provenance", true, "record result provenance and append the attribution section to the report")
	latencyFlag := flag.Bool("latency", false, "record a per-work-item latency histogram and print p50/p95/p99 to stderr (also in -metrics-out); off by default so regenerated reports stay deterministic")
	prof := profile.AddFlags(flag.CommandLine)
	flag.Parse()

	packed, err := sweep.KernelOption(*kernelName)
	if err != nil {
		fail(err)
	}

	stop, err := prof.Start()
	if err != nil {
		fail(err)
	}

	opts := report.Defaults()
	if *fast {
		opts = report.Fast()
	}
	var prov *sweep.Provenance
	if *provenanceFlag {
		prov = sweep.NewProvenance(0)
	}
	eopt := sweep.Options{Workers: *workers, CacheSize: *cache,
		Analytic: analytic, PackedKernel: packed, Provenance: prov}
	var itemLatency *obs.LatencyHist
	if *latencyFlag {
		itemLatency = obs.NewLatencyHist()
		eopt.ItemLatency = itemLatency
	}
	eng := sweep.NewEngine(eopt)
	opts.Engine = eng
	if *metricsAddr != "" {
		closer, err := obs.ServeMetrics("ivmreport", *metricsAddr, func() *sweep.Engine { return eng }, nil, itemLatency)
		if err != nil {
			fail(err)
		}
		defer closer.Close()
	}

	if err := report.Write(os.Stdout, opts); err != nil {
		stop()
		fail(err)
	}
	if itemLatency != nil {
		fmt.Fprintf(os.Stderr, "work-item latency: %s\n", itemLatency.Snapshot().Summary())
	}
	if *metricsOut != "" {
		snap := eng.Snapshot()
		out := obs.Snapshot{Engine: &snap}
		if itemLatency != nil {
			ls := itemLatency.Snapshot()
			out.ItemLatency = &ls
		}
		if err := obs.WriteSnapshotFile(*metricsOut, out); err != nil {
			stop()
			fail(err)
		}
	}
	if err := stop(); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
