package ivm_test

import (
	"strings"
	"testing"

	"ivm"
)

func TestFacadeAnalyze(t *testing.T) {
	a := ivm.Analyze(12, 3, 1, 7)
	if a.Regime != ivm.RegimeConflictFree {
		t.Fatalf("regime = %s", a.Regime)
	}
	if !a.Bandwidth.Equal(ivm.NewRational(2, 1)) {
		t.Fatalf("bandwidth = %s", a.Bandwidth)
	}
	if ivm.ReturnNumber(16, 6) != 8 {
		t.Fatal("ReturnNumber")
	}
	if !ivm.SingleStreamBandwidth(16, 4, 8).Equal(ivm.NewRational(1, 2)) {
		t.Fatal("SingleStreamBandwidth")
	}
	if !ivm.ConflictFreeCondition(12, 3, 1, 7) {
		t.Fatal("ConflictFreeCondition")
	}
	if !ivm.BarrierBandwidth(1, 6).Equal(ivm.NewRational(7, 6)) {
		t.Fatal("BarrierBandwidth")
	}
	if !ivm.SaturationBound(16, 4, 6).Equal(ivm.NewRational(4, 1)) {
		t.Fatal("SaturationBound")
	}
	if !ivm.ConflictFreeAt(12, 3, 0, 1, 3, 7) {
		t.Fatal("ConflictFreeAt")
	}
	if !ivm.PairIsomorphic(16, 1, 3, 11, 1) {
		t.Fatal("PairIsomorphic")
	}
}

func TestFacadeSimulation(t *testing.T) {
	bw, err := ivm.SteadyBandwidth(
		ivm.MemConfig{Banks: 13, BankBusy: 6, CPUs: 2}, 1<<20,
		ivm.StreamSpec{Start: 0, Distance: 1, CPU: 0},
		ivm.StreamSpec{Start: 0, Distance: 6, CPU: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !bw.Equal(ivm.NewRational(7, 6)) {
		t.Fatalf("b_eff = %s", bw)
	}

	sys := ivm.NewSystem(ivm.MemConfig{Banks: 8, BankBusy: 2, CPUs: 1})
	p := sys.AddPort(0, "1", ivm.FiniteStream(0, 1, 32))
	clocks, done := sys.RunUntilDone(1000)
	if !done || clocks != 32 || p.Count.Grants != 32 {
		t.Fatalf("clocks=%d done=%v grants=%d", clocks, done, p.Count.Grants)
	}
}

func TestFacadeSkewedSystem(t *testing.T) {
	sys := ivm.NewSkewedSystem(ivm.MemConfig{Banks: 16, BankBusy: 4, CPUs: 1}, 1)
	sys.AddPort(0, "1", ivm.InfiniteStream(0, 16))
	if grants := sys.Run(256); grants != 256 {
		t.Fatalf("grants = %d; linear skew should fix stride 16", grants)
	}
}

func TestFacadeTimeline(t *testing.T) {
	out := ivm.Timeline(ivm.MemConfig{Banks: 12, BankBusy: 3, CPUs: 2}, 24,
		ivm.StreamSpec{Start: 0, Distance: 1, CPU: 0},
		ivm.StreamSpec{Start: 3, Distance: 7, CPU: 1},
	)
	if len(strings.Split(strings.TrimRight(out, "\n"), "\n")) != 12 {
		t.Fatalf("timeline:\n%s", out)
	}
	if !strings.ContainsAny(out, "12") {
		t.Fatal("timeline shows no service")
	}
}

func TestFacadeFigures(t *testing.T) {
	figs := ivm.Figures()
	if len(figs) != 9 {
		t.Fatalf("figures = %d", len(figs))
	}
	f, err := ivm.FigureByID("8a")
	if err != nil {
		t.Fatal(err)
	}
	bw, _, err := f.SteadyBandwidth()
	if err != nil {
		t.Fatal(err)
	}
	if !bw.Equal(ivm.NewRational(3, 2)) {
		t.Fatalf("Fig. 8a b_eff = %s", bw)
	}
}

func TestFacadeSweepEngine(t *testing.T) {
	seq := ivm.SweepGrid(12, 3)
	eng := ivm.NewSweepEngine(ivm.SweepOptions{Workers: 4})
	par := eng.Grid(12, 3)
	if len(par) != len(seq) {
		t.Fatalf("engine grid has %d pairs, sequential %d", len(par), len(seq))
	}
	for i := range seq {
		if !par[i].SimMin.Equal(seq[i].SimMin) || !par[i].SimMax.Equal(seq[i].SimMax) {
			t.Fatalf("pair %d differs: %+v vs %+v", i, par[i], seq[i])
		}
	}
	s := ivm.SummariseSweep(12, 3, par)
	if s.Pairs != len(par) || len(s.Disagree) != 0 {
		t.Fatalf("summary %+v", s)
	}
	m := eng.Metrics()
	if m.PairsSwept != int64(len(par)) || m.CacheHits == 0 {
		t.Fatalf("metrics %+v", m)
	}
	lo, hi := ivm.PairBandwidthBounds(12, 3, 1, 7)
	if !lo.Equal(ivm.NewRational(1, 3)) || !hi.Equal(ivm.NewRational(2, 1)) {
		t.Fatalf("bounds [%s, %s]", lo, hi)
	}
}

func TestFacadeSpecSweep(t *testing.T) {
	spec := ivm.NewPairSpec(8, 2, 1, 2)
	if fam := spec.Family(); fam != "pair" {
		t.Fatalf("pair spec compiles into family %q", fam)
	}
	seq := ivm.SweepSpec(spec)
	eng := ivm.NewSweepEngine(ivm.SweepOptions{Workers: 2})
	par := eng.SweepSpec(spec)
	if !par.SimMin.Equal(seq.SimMin) || !par.SimMax.Equal(seq.SimMax) || par.Starts != seq.Starts {
		t.Fatalf("engine spec sweep %+v != sequential %+v", par, seq)
	}
	four := ivm.NewNStreamSpec(4, 1, []int{1, 1, 2, 3})
	if fam := four.Family(); fam != "stream4" {
		t.Fatalf("four-stream spec compiles into family %q", fam)
	}
	r := eng.SweepSpec(four)
	if r.Starts != 64 || r.Violations != 0 {
		t.Fatalf("four-stream sweep %+v", r)
	}
	grid := ivm.SweepNStreamGrid(4, 1, 3)
	if s := ivm.SummariseSweepSpecGrid(grid); s.Violations != 0 || s.Starts == 0 {
		t.Fatalf("three-stream grid summary %+v", s)
	}
}

func TestFacadeTriad(t *testing.T) {
	cfg := ivm.DefaultMachine()
	if cfg.VectorLength != 64 {
		t.Fatalf("default VL = %d", cfg.VectorLength)
	}
	if mc := ivm.XMPMemConfig(); mc.Banks != 16 || mc.BankBusy != 4 {
		t.Fatalf("XMP mem config: %+v", mc)
	}
	r := ivm.TriadExperiment(1, 128, false, cfg)
	if r.Clocks <= 0 || r.Simultaneous != 0 {
		t.Fatalf("triad result %+v", r)
	}
	sweep := ivm.TriadSweep(2, 128, true, cfg)
	if len(sweep) != 2 || sweep[0].INC != 1 {
		t.Fatalf("sweep %+v", sweep)
	}
}

func TestFacadeTriadVerdict(t *testing.T) {
	canonical, regime, triadWins, isBarrier := ivm.TriadVerdict(6)
	if canonical != [2]int{2, 3} {
		t.Fatalf("canonical = %v", canonical)
	}
	if regime != ivm.RegimeUniqueBarrier || !triadWins || !isBarrier {
		t.Fatalf("verdict: %s wins=%v barrier=%v", regime, triadWins, isBarrier)
	}
	_, regime, _, isBarrier = ivm.TriadVerdict(9)
	if regime != ivm.RegimeConflictFree || isBarrier {
		t.Fatalf("INC=9 verdict: %s barrier=%v", regime, isBarrier)
	}
}
