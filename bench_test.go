package ivm

// One benchmark per table/figure of the paper's evaluation. Each bench
// regenerates the corresponding result and reports the scientific
// quantity (effective bandwidth, execution clocks, conflict counts) as
// benchmark metrics, so `go test -bench=. -benchmem` doubles as the
// reproduction record (see EXPERIMENTS.md).

import (
	"fmt"
	"testing"
	"time"

	"ivm/internal/core"
	"ivm/internal/figures"
	"ivm/internal/machine"
	"ivm/internal/memsys"
	"ivm/internal/obs"
	"ivm/internal/randaccess"
	"ivm/internal/skew"
	"ivm/internal/stream"
	"ivm/internal/sweep"
	"ivm/internal/xmp"
)

func benchFigure(b *testing.B, f figures.Figure) {
	b.Helper()
	var bw float64
	for i := 0; i < b.N; i++ {
		r, _, err := f.SteadyBandwidth()
		if err != nil {
			b.Fatal(err)
		}
		bw = r.Float()
	}
	b.ReportMetric(bw, "b_eff")
	if f.WantBandwidth.Num != 0 {
		b.ReportMetric(f.WantBandwidth.Float(), "b_eff_paper")
	}
}

// Fig. 2: conflict-free pair (m=12, nc=3, d1=1, d2=7), b_eff = 2.
func BenchmarkFig2ConflictFree(b *testing.B) { benchFigure(b, figures.Fig2()) }

// Fig. 3: barrier-situation (m=13, nc=6, d1=1, d2=6), b_eff = 7/6.
func BenchmarkFig3Barrier(b *testing.B) { benchFigure(b, figures.Fig3()) }

// Fig. 4: double conflict (b2=1), mutual delays; pinned b_eff = 1.
func BenchmarkFig4DoubleConflict(b *testing.B) { benchFigure(b, figures.Fig4()) }

// Fig. 5: barrier-situation (m=13, nc=4, d1=1, d2=3, b2=7), b_eff = 4/3.
func BenchmarkFig5Barrier(b *testing.B) { benchFigure(b, figures.Fig5()) }

// Fig. 6: inverted barrier (b2=1); pinned b_eff = 7/5.
func BenchmarkFig6InvertedBarrier(b *testing.B) { benchFigure(b, figures.Fig6()) }

// Fig. 7: conflict-free access with sections (m=12, s=2, nc=2), b_eff = 2.
func BenchmarkFig7Sections(b *testing.B) { benchFigure(b, figures.Fig7()) }

// Fig. 8a: linked conflict under fixed priority, b_eff = 3/2.
func BenchmarkFig8aLinkedConflict(b *testing.B) { benchFigure(b, figures.Fig8a()) }

// Fig. 8b: linked conflict resolved by cyclic priority, b_eff = 2.
func BenchmarkFig8bCyclicPriority(b *testing.B) { benchFigure(b, figures.Fig8b()) }

// Fig. 9: linked conflict resolved by consecutive sections, b_eff = 2.
func BenchmarkFig9ConsecutiveSections(b *testing.B) { benchFigure(b, figures.Fig9()) }

// Fig. 10 series: the triad on the simulated X-MP, n = 1024,
// INC = 1..16. Each sub-benchmark reports the triad's execution time in
// clock periods plus its three conflict counters.
func BenchmarkFig10aTriadBusy(b *testing.B) {
	cfg := machine.DefaultConfig()
	for inc := 1; inc <= 16; inc++ {
		b.Run(fmt.Sprintf("INC=%d", inc), func(b *testing.B) {
			var r xmp.TriadResult
			for i := 0; i < b.N; i++ {
				r = xmp.TriadExperiment(inc, 1024, true, cfg)
			}
			b.ReportMetric(float64(r.Clocks), "clocks")
			b.ReportMetric(r.Micros, "us")
		})
	}
}

func BenchmarkFig10bTriadQuiet(b *testing.B) {
	cfg := machine.DefaultConfig()
	for inc := 1; inc <= 16; inc++ {
		b.Run(fmt.Sprintf("INC=%d", inc), func(b *testing.B) {
			var r xmp.TriadResult
			for i := 0; i < b.N; i++ {
				r = xmp.TriadExperiment(inc, 1024, false, cfg)
			}
			b.ReportMetric(float64(r.Clocks), "clocks")
			b.ReportMetric(r.Micros, "us")
		})
	}
}

func benchTriadConflicts(b *testing.B, metric func(xmp.TriadResult) int64, unit string) {
	b.Helper()
	cfg := machine.DefaultConfig()
	for inc := 1; inc <= 16; inc++ {
		b.Run(fmt.Sprintf("INC=%d", inc), func(b *testing.B) {
			var r xmp.TriadResult
			for i := 0; i < b.N; i++ {
				r = xmp.TriadExperiment(inc, 1024, true, cfg)
			}
			b.ReportMetric(float64(metric(r)), unit)
		})
	}
}

func BenchmarkFig10cBankConflicts(b *testing.B) {
	benchTriadConflicts(b, func(r xmp.TriadResult) int64 { return r.Bank }, "bank_conflicts")
}

func BenchmarkFig10dSectionConflicts(b *testing.B) {
	benchTriadConflicts(b, func(r xmp.TriadResult) int64 { return r.Section }, "section_conflicts")
}

func BenchmarkFig10eSimultaneousConflicts(b *testing.B) {
	benchTriadConflicts(b, func(r xmp.TriadResult) int64 { return r.Simultaneous }, "simultaneous_conflicts")
}

// Theorem 1: return numbers over a full grid.
func BenchmarkTheorem1ReturnNumbers(b *testing.B) {
	sum := 0
	for i := 0; i < b.N; i++ {
		sum = 0
		for m := 1; m <= 512; m++ {
			for d := 0; d < m; d++ {
				sum += core.ReturnNumber(m, d)
			}
		}
	}
	b.ReportMetric(float64(sum), "sum_r")
}

// Section III-A: single-stream b_eff over the X-MP's strides.
func BenchmarkSingleStreamBandwidth(b *testing.B) {
	var acc float64
	for i := 0; i < b.N; i++ {
		acc = 0
		for d := 0; d < 16; d++ {
			acc += core.SingleStreamBandwidth(16, 4, d).Float()
		}
	}
	b.ReportMetric(acc/16, "mean_b_eff")
}

// Theorem 3 sweep: analytic vs simulated agreement over a full grid.
func BenchmarkTheorem3Sweep(b *testing.B) {
	var disagreements int
	for i := 0; i < b.N; i++ {
		results := sweep.Grid(12, 3)
		disagreements = len(sweep.Summarise(12, 3, results).Disagree)
	}
	b.ReportMetric(float64(disagreements), "disagreements")
}

// Parallel sweep engine vs the sequential reference, over the full
// EXPERIMENTS.md cross-validation grid. The parallel benchmark builds a
// fresh engine each iteration (cold cache) and reports the achieved
// cache hit rate plus the wall-clock speedup against one sequential
// pass measured in the same process.
var sweepBenchGrid = []struct{ m, nc int }{{8, 2}, {12, 3}, {13, 4}, {16, 4}}

func BenchmarkSweepSequential(b *testing.B) {
	var pairs int
	for i := 0; i < b.N; i++ {
		pairs = 0
		for _, g := range sweepBenchGrid {
			pairs += len(sweep.Grid(g.m, g.nc))
		}
	}
	b.ReportMetric(float64(pairs), "pairs")
}

func BenchmarkSweepParallel(b *testing.B) {
	start := time.Now()
	for _, g := range sweepBenchGrid {
		sweep.Grid(g.m, g.nc)
	}
	seq := time.Since(start)
	var hitRate float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := sweep.NewEngine(sweep.Options{Workers: 4})
		for _, g := range sweepBenchGrid {
			eng.Grid(g.m, g.nc)
		}
		hitRate = eng.Metrics().HitRate()
	}
	b.ReportMetric(hitRate*100, "cache_hit_%")
	b.ReportMetric(seq.Seconds()/(b.Elapsed().Seconds()/float64(b.N)), "speedup_vs_seq")
}

// The two-level speed path (docs/KERNEL.md), measured against the
// scalar no-gate baseline in the same process. Both sides run with the
// cache disabled so the metric isolates the speed paths themselves
// rather than memoization. The analytic benchmark is the theorem-dense
// census: a large power-of-two modulus with a short busy time, where
// Theorems 2/3 cover most distance pairs and the classifier gate
// answers placements without simulating.
func BenchmarkSweepAnalyticFastPath(b *testing.B) {
	off := false
	const m, nc = 32, 2
	start := time.Now()
	base := sweep.NewEngine(sweep.Options{Workers: 4, CacheSize: -1, Analytic: &off, PackedKernel: &off})
	base.Grid(m, nc)
	baseline := time.Since(start)
	var analyticRate float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := sweep.NewEngine(sweep.Options{Workers: 4, CacheSize: -1})
		eng.Grid(m, nc)
		analyticRate = eng.Metrics().AnalyticHitRate()
	}
	b.ReportMetric(analyticRate*100, "analytic_hit_%")
	b.ReportMetric(baseline.Seconds()/(b.Elapsed().Seconds()/float64(b.N)), "speedup_vs_scalar")
}

// The packed-kernel benchmark is the simulation-heavy census: the
// prime modulus (barrier- and conflict-rich) plus the X-MP modulus,
// with the analytic gate forced off on BOTH sides so every placement
// simulates and the metric isolates the bit-packed bank-busy kernel
// against the scalar oracle loop.
func BenchmarkSweepKernelPacked(b *testing.B) {
	off, on := false, true
	grid := []struct{ m, nc int }{{13, 4}, {16, 4}}
	start := time.Now()
	base := sweep.NewEngine(sweep.Options{Workers: 4, CacheSize: -1, Analytic: &off, PackedKernel: &off})
	for _, g := range grid {
		base.Grid(g.m, g.nc)
	}
	baseline := time.Since(start)
	var cycles int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := sweep.NewEngine(sweep.Options{Workers: 4, CacheSize: -1, Analytic: &off, PackedKernel: &on})
		for _, g := range grid {
			eng.Grid(g.m, g.nc)
		}
		cycles = eng.Metrics().CyclesFound
	}
	b.ReportMetric(float64(cycles), "cycles")
	b.ReportMetric(baseline.Seconds()/(b.Elapsed().Seconds()/float64(b.N)), "speedup_vs_scalar")
}

// The EXPERIMENTS.md triple grid: all-placements three-stream sweeps
// on the prime moduli, where the unit-group canonicalisation collapses
// most placements (power-of-two moduli have large stabilisers and
// fall below the 50% acceptance floor; see docs/CACHING.md).
var tripleBenchGrid = []struct{ m, nc int }{{7, 2}, {13, 4}}

func BenchmarkSweepTriplesSequential(b *testing.B) {
	var placements int
	for i := 0; i < b.N; i++ {
		placements = 0
		for _, g := range tripleBenchGrid {
			for _, r := range sweep.TripleGrid(g.m, g.nc) {
				placements += r.Starts
			}
		}
	}
	b.ReportMetric(float64(placements), "placements")
}

func BenchmarkSweepTriplesParallel(b *testing.B) {
	start := time.Now()
	for _, g := range tripleBenchGrid {
		sweep.TripleGrid(g.m, g.nc)
	}
	seq := time.Since(start)
	var hitRate float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := sweep.NewEngine(sweep.Options{Workers: 4})
		for _, g := range tripleBenchGrid {
			eng.TripleGrid(g.m, g.nc)
		}
		hitRate = eng.Metrics().TripleHitRate()
	}
	b.ReportMetric(hitRate*100, "triple_cache_hit_%")
	b.ReportMetric(seq.Seconds()/(b.Elapsed().Seconds()/float64(b.N)), "speedup_vs_seq")
}

// The EXPERIMENTS.md section grids: the Fig. 7 modulus and the X-MP
// layout, canonicalised under the full unit group (the default,
// validated by the section-units campaign).
var sectionBenchGrid = []struct{ m, s, nc int }{{12, 3, 3}, {16, 4, 4}}

func BenchmarkSweepSectionsSequential(b *testing.B) {
	var pairs int
	for i := 0; i < b.N; i++ {
		pairs = 0
		for _, g := range sectionBenchGrid {
			pairs += len(sweep.SectionGrid(g.m, g.s, g.nc))
		}
	}
	b.ReportMetric(float64(pairs), "pairs")
}

func BenchmarkSweepSectionsParallel(b *testing.B) {
	start := time.Now()
	for _, g := range sectionBenchGrid {
		sweep.SectionGrid(g.m, g.s, g.nc)
	}
	seq := time.Since(start)
	var hitRate float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := sweep.NewEngine(sweep.Options{Workers: 4})
		for _, g := range sectionBenchGrid {
			eng.SectionGrid(g.m, g.s, g.nc)
		}
		hitRate = eng.Metrics().SectionHitRate()
	}
	b.ReportMetric(hitRate*100, "section_cache_hit_%")
	b.ReportMetric(seq.Seconds()/(b.Elapsed().Seconds()/float64(b.N)), "speedup_vs_seq")
}

// The fixed-placement triple census under the translation-orbit cache
// key: a census at translated starts (t, 1+t, 2+t) is the standard
// census seen through the translation isomorphism, so the translated
// pass must be answered entirely from the cache (100% hits).
func BenchmarkSweepTripleCensusTranslated(b *testing.B) {
	var base, translated float64
	for i := 0; i < b.N; i++ {
		eng := sweep.NewEngine(sweep.Options{Workers: 4})
		eng.Triples(13, 4)
		m0 := eng.Metrics().Family("triple")
		base = float64(m0.Hits) / float64(m0.Hits+m0.Misses)
		eng.TriplesAt(13, 4, [3]int{5, 6, 7})
		m1 := eng.Metrics().Family("triple")
		dh, dm := m1.Hits-m0.Hits, m1.Misses-m0.Misses
		translated = float64(dh) / float64(dh+dm)
	}
	b.ReportMetric(base*100, "census_cache_hit_%")
	b.ReportMetric(translated*100, "translated_census_hit_%")
}

// The generic four-stream grid (p=4, one stream per CPU): traffic of a
// spec outside the three legacy families, accounted under its own
// "stream4" cache family.
func BenchmarkSweepNStreamParallel(b *testing.B) {
	var hitRate float64
	for i := 0; i < b.N; i++ {
		eng := sweep.NewEngine(sweep.Options{Workers: 4})
		eng.NStreamGrid(4, 1, 4)
		hitRate = eng.Metrics().FamilyHitRate("stream4")
	}
	b.ReportMetric(hitRate*100, "stream4_cache_hit_%")
}

// The policy sweep: the pair grid under cyclic arbitration priority,
// whose traffic lands in the "pair-cyc" cache family (the analytic
// gate declines non-fixed priority, so every placement is cached
// simulation). bench.sh distils the hit rate and throughput into the
// policies block of BENCH_sweep.json, so the perf trajectory tracks
// the policy dimensions alongside the historical fixed-priority
// families.
func BenchmarkSweepPolicies(b *testing.B) {
	specs := sweep.GridSpecs(8, 0, 2)
	for i := range specs {
		specs[i] = specs[i].WithPolicy(memsys.CyclicPriority, memsys.CyclicSections)
	}
	var hitRate float64
	for i := 0; i < b.N; i++ {
		eng := sweep.NewEngine(sweep.Options{Workers: 4})
		eng.SpecGrid(specs)
		hitRate = eng.Metrics().FamilyHitRate("pair-cyc")
	}
	b.ReportMetric(hitRate*100, "policy_cache_hit_%")
	b.ReportMetric(float64(len(specs)*b.N)/b.Elapsed().Seconds(), "policy_specs_per_s")
}

// Result provenance of the EXPERIMENTS.md cross-validation grid plus
// the four-stream family, with the attribution recorder attached: the
// per-path split (analytic theorem / cache orbit / simulation) over
// everything the engine resolved, and the share of stream4's orbits
// that were simulated once and never reused — the population behind
// its low hit rate (docs/OBSERVABILITY.md). bench.sh distils these
// into the provenance block of BENCH_sweep.json so the perf
// trajectory also tracks how results are being answered, not just how
// fast.
func BenchmarkSweepProvenance(b *testing.B) {
	var snap sweep.ProvenanceSnapshot
	for i := 0; i < b.N; i++ {
		prov := sweep.NewProvenance(0)
		eng := sweep.NewEngine(sweep.Options{Workers: 4, Provenance: prov})
		for _, g := range sweepBenchGrid {
			eng.Grid(g.m, g.nc)
		}
		eng.NStreamGrid(4, 1, 4)
		snap = prov.Snapshot()
	}
	var analytic, cache, sim, resolved int64
	for _, f := range snap.Families {
		analytic += f.Analytic
		cache += f.CacheHits
		sim += f.SimScalar + f.SimPacked
		resolved += f.Resolved
	}
	pct := func(n int64) float64 { return 100 * float64(n) / float64(resolved) }
	b.ReportMetric(pct(analytic), "analytic_path_%")
	b.ReportMetric(pct(cache), "cache_path_%")
	b.ReportMetric(pct(sim), "sim_path_%")
	if s4 := snap.Families["stream4"]; s4.Orbits > 0 {
		b.ReportMetric(100*float64(s4.SingletonOrbits)/float64(s4.Orbits), "stream4_singleton_orbit_%")
	}
}

// Per-cycle conflict composition of the Fig. 3 barrier, the
// observability layer's reference config: the phase histogram's
// per-kind totals over one steady-state period. bench.sh distils
// these metrics into the conflict_composition block of
// BENCH_sweep.json, so the perf trajectory also tracks what the
// conflicts are, not just how fast the sweeps run.
func BenchmarkPhaseHistogram(b *testing.B) {
	cfg := memsys.Config{Banks: 13, BankBusy: 6, CPUs: 2}
	specs := []memsys.StreamSpec{
		{Start: 0, Distance: 1, CPU: 0},
		{Start: 0, Distance: 6, CPU: 1},
	}
	var h obs.PhaseHistogram
	for i := 0; i < b.N; i++ {
		var err error
		h, _, err = obs.TracePhaseHistogram(cfg, specs, 1<<20)
		if err != nil {
			b.Fatal(err)
		}
	}
	tot := h.Totals()
	b.ReportMetric(float64(tot.Grants), "grants")
	b.ReportMetric(float64(tot.Bank), "bank_conflicts")
	b.ReportMetric(float64(tot.Simultaneous), "simultaneous_conflicts")
	b.ReportMetric(float64(tot.Section), "section_conflicts")
	b.ReportMetric(float64(h.CycleLength), "cycle_clocks")
}

// Theorems 4-7 / Eq. 29: every unique-barrier pair of the 16-bank
// system simulated from all starts.
func BenchmarkBarrierBandwidthSweep(b *testing.B) {
	var checked int
	for i := 0; i < b.N; i++ {
		checked = 0
		for d1 := 1; d1 < 16; d1++ {
			for d2 := d1 + 1; d2 < 16; d2++ {
				a := core.Analyze(16, 4, d1, d2)
				if a.Regime != core.RegimeUniqueBarrier {
					continue
				}
				for b2 := 0; b2 < 16; b2++ {
					sys := memsys.New(memsys.Config{Banks: 16, BankBusy: 4, CPUs: 2})
					sys.AddPort(0, "1", memsys.NewInfiniteStrided(0, int64(d1)))
					sys.AddPort(1, "2", memsys.NewInfiniteStrided(int64(b2), int64(d2)))
					c, err := sys.FindCycle(1 << 20)
					if err != nil {
						b.Fatal(err)
					}
					if !c.EffectiveBandwidth().Equal(a.Bandwidth) {
						b.Fatalf("Eq. 29 violated for %d(+)%d b2=%d", d1, d2, b2)
					}
					checked++
				}
			}
		}
	}
	b.ReportMetric(float64(checked), "verified_starts")
}

// Theorems 8-9: section conflict-free constructions on the X-MP layout.
func BenchmarkSectionTheoremSweep(b *testing.B) {
	var hits int
	for i := 0; i < b.N; i++ {
		hits = 0
		for d1 := 0; d1 < 16; d1++ {
			for d2 := 0; d2 < 16; d2++ {
				if ok, _ := core.SectionConflictFree(16, 4, 4, d1, d2); ok {
					hits++
				}
			}
		}
	}
	b.ReportMetric(float64(hits), "conflict_free_pairs")
}

// Appendix: isomorphism normalisation over all pairs mod 16.
func BenchmarkIsomorphismSweep(b *testing.B) {
	var reps int
	for i := 0; i < b.N; i++ {
		reps = 0
		for d1 := 0; d1 < 16; d1++ {
			for d2 := 0; d2 < 16; d2++ {
				reps += len(core.Representations(16, d1, d2))
				stream.Normalize(16, d1, d2)
			}
		}
	}
	b.ReportMetric(float64(reps), "representations")
}

// Ablation (conclusion): skewing schemes vs plain interleaving on the
// power-of-two strides that defeat modulo mapping.
func BenchmarkSkewingAblation(b *testing.B) {
	xor, err := skew.NewXOR(16, 1)
	if err != nil {
		b.Fatal(err)
	}
	schemes := []struct {
		name string
		mp   memsys.BankMapper
	}{
		{"plain", skew.Identity{M: 16}},
		{"linear", skew.Linear{M: 16, S: 1}},
		{"xor", xor},
	}
	for _, sc := range schemes {
		b.Run(sc.name, func(b *testing.B) {
			var worst float64
			for i := 0; i < b.N; i++ {
				worst = 1.0
				for _, stride := range []int64{8, 16, 32, 64} {
					if bw := skew.StrideBandwidth(sc.mp, 4, stride, 2048); bw < worst {
						worst = bw
					}
				}
			}
			b.ReportMetric(worst, "worst_b_eff")
		})
	}
}

// Ablation (Figs. 8a/8b/9): priority rule and section mapping against
// the linked conflict.
func BenchmarkLinkedConflictAblation(b *testing.B) {
	cases := []struct {
		name string
		fig  figures.Figure
	}{
		{"fixed+cyclic-sections", figures.Fig8a()},
		{"cyclic-priority", figures.Fig8b()},
		{"consecutive-sections", figures.Fig9()},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var bw float64
			for i := 0; i < b.N; i++ {
				r, _, err := c.fig.SteadyBandwidth()
				if err != nil {
					b.Fatal(err)
				}
				bw = r.Float()
			}
			b.ReportMetric(bw, "b_eff")
		})
	}
}

// Steady-state detector performance: hashed-state cycle detection vs a
// long fixed run, on the Fig. 3 barrier.
func BenchmarkCycleDetection(b *testing.B) {
	b.Run("hashed-cycle", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f := figures.Fig3()
			sys := f.Build()
			if _, err := sys.FindCycle(1 << 20); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("long-run-average", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f := figures.Fig3()
			sys := f.Build()
			sys.Run(1 << 14)
		}
	})
}

// Ablation (conclusion): the multitasking option — n+n elements on the
// two CPUs vs 2n on one — for a representative stride set.
func BenchmarkMultitaskTriad(b *testing.B) {
	cfg := machine.DefaultConfig()
	for _, inc := range []int{1, 2, 3, 6} {
		b.Run(fmt.Sprintf("INC=%d", inc), func(b *testing.B) {
			var r xmp.MultitaskResult
			for i := 0; i < b.N; i++ {
				r = xmp.MultitaskTriad(inc, 512, cfg)
			}
			b.ReportMetric(r.Speedup, "speedup")
			b.ReportMetric(float64(r.SplitClocks), "split_clocks")
		})
	}
}

// Ablation (conclusion): linear bank skewing on the full machine model.
func BenchmarkSkewedTriad(b *testing.B) {
	cfg := machine.DefaultConfig()
	for _, inc := range []int{1, 8, 16} {
		b.Run(fmt.Sprintf("INC=%d", inc), func(b *testing.B) {
			var plain, skewed xmp.TriadResult
			for i := 0; i < b.N; i++ {
				plain = xmp.TriadExperiment(inc, 512, true, cfg)
				skewed = xmp.SkewedTriadExperiment(inc, 512, xmp.LinearSkewMapper(), cfg)
			}
			b.ReportMetric(float64(plain.Clocks), "plain_clocks")
			b.ReportMetric(float64(skewed.Clocks), "skewed_clocks")
		})
	}
}

// Companion-study kernel tables: copy/vadd/axpy stride sweep.
func BenchmarkKernelSweep(b *testing.B) {
	cfg := machine.DefaultConfig()
	var res []xmp.KernelResult
	for i := 0; i < b.N; i++ {
		res = xmp.KernelSweep(8, 256, cfg)
	}
	b.ReportMetric(float64(len(res)), "table_rows")
}

// Baseline (introduction's refs [1]-[5]): classical random-access
// bandwidth vs vector mode on the same memory.
func BenchmarkRandomAccessBaseline(b *testing.B) {
	var r []randaccess.VectorVsRandom
	for i := 0; i < b.N; i++ {
		r = randaccess.CompareStrides(16, 4, 4, []int{1, 8}, 8192)
	}
	b.ReportMetric(r[0].Vector, "vector_d1")
	b.ReportMetric(r[0].Random, "random")
	b.ReportMetric(r[0].Binomial, "binomial_model")
}

// Section IV's saturation argument: 6 unit-stride ports against the
// m/n_c capacity bound.
func BenchmarkSaturationBound(b *testing.B) {
	var bw float64
	for i := 0; i < b.N; i++ {
		sys := memsys.New(memsys.Config{Banks: 16, BankBusy: 4, CPUs: 2})
		for p := 0; p < 6; p++ {
			sys.AddPort(p/3, fmt.Sprintf("%d", p), memsys.NewInfiniteStrided(int64(p), 1))
		}
		c, err := sys.FindCycle(1 << 18)
		if err != nil {
			b.Fatal(err)
		}
		bw = c.EffectiveBandwidth().Float()
	}
	b.ReportMetric(bw, "b_eff")
	b.ReportMetric(core.SaturationBound(16, 4, 6).Float(), "bound")
}

// Extension ablation: a port reorder window dissolves the Fig. 3
// barrier — quantifying how much of the bandwidth loss is the in-order
// port rule rather than the banks.
func BenchmarkReorderWindowAblation(b *testing.B) {
	for _, window := range []int{1, 2, 6} {
		b.Run(fmt.Sprintf("window=%d", window), func(b *testing.B) {
			var clocks int64
			for i := 0; i < b.N; i++ {
				sys := memsys.New(memsys.Config{Banks: 13, BankBusy: 6, CPUs: 2})
				sys.AddPort(0, "1", memsys.NewInfiniteStrided(0, 1))
				src := memsys.NewWindowedStrided(0, 6, 390)
				sys.AddWindowedPort(1, "2", src, window)
				for !src.Done() {
					sys.Step()
				}
				clocks = sys.Clock()
			}
			b.ReportMetric(float64(clocks), "clocks_for_390")
		})
	}
}

// Companion-study [10] style: triad-vs-triad interference matrix.
func BenchmarkInterferenceMatrix(b *testing.B) {
	cfg := machine.DefaultConfig()
	var m [][]xmp.InterferenceCell
	for i := 0; i < b.N; i++ {
		m = xmp.InterferenceMatrix(4, 128, cfg)
	}
	b.ReportMetric(float64(m[0][0].ClocksA), "uniform_1x1_clocks")
	b.ReportMetric(float64(m[1][0].ClocksA), "barrier_2v1_clocks")
}

// Fidelity check: the Fig. 10 shape with the background CPU modelled as
// a real vector program instead of ideal raw streams.
func BenchmarkTriadMachineBackground(b *testing.B) {
	cfg := machine.DefaultConfig()
	for _, inc := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("INC=%d", inc), func(b *testing.B) {
			var r xmp.TriadResult
			for i := 0; i < b.N; i++ {
				r = xmp.TriadAgainstMachineBackground(inc, 256, cfg)
			}
			b.ReportMetric(float64(r.Clocks), "clocks")
		})
	}
}

// Conclusion's dimensioning advice: matrix row/diagonal access for
// hostile and friendly leading dimensions.
func BenchmarkMatrixAccessStudy(b *testing.B) {
	cfg := machine.DefaultConfig()
	var res []xmp.MatrixResult
	for i := 0; i < b.N; i++ {
		res = xmp.MatrixStudy([]int{64, 65}, 192, cfg)
	}
	for _, r := range res {
		if r.Pattern == xmp.RowAccess {
			b.ReportMetric(float64(r.Clocks), fmt.Sprintf("row_ldim%d_clocks", r.LeadingDim))
		}
	}
}

// Raw simulator throughput: clocks per second with six contending
// streams on the X-MP memory.
func BenchmarkSimulatorStep(b *testing.B) {
	sys := memsys.New(xmp.MemConfig())
	for i := 0; i < 3; i++ {
		sys.AddPort(0, fmt.Sprintf("a%d", i), memsys.NewInfiniteStrided(int64(i), 1))
		sys.AddPort(1, fmt.Sprintf("b%d", i), memsys.NewInfiniteStrided(int64(i), 2))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Step()
	}
}
